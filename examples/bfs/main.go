// BFS: graph traversal with a visited bitmap (Sec 4.2). The bitmap is
// tested with ordinary loads and set with commutative ORs, so its lines
// bounce between read-only and update-only modes — the finely-interleaved
// pattern where software privatization is impractical but COUP still helps.
//
//	go run ./examples/bfs
//	go run ./examples/bfs -scale 0.02   # tiny graph (CI smoke tests)
package main

import (
	"flag"
	"fmt"

	"repro/pkg/coup"
)

func main() {
	scale := flag.Float64("scale", 1.0, "shrink the graph for quick runs (1.0 = full)")
	flag.Parse()
	const cores = 64
	// Graph size is exponential in the R-MAT scale parameter; shrink in
	// the same steps the experiment harness uses.
	graphScale := 13
	if *scale < 0.5 {
		graphScale = 11
	}
	if *scale < 0.1 {
		graphScale = 9
	}
	fmt.Printf("parallel BFS over an R-MAT graph (2^%d vertices), %d cores\n\n", graphScale, cores)

	for _, p := range []string{"MESI", "MEUSI"} {
		st, err := coup.Run("bfs",
			coup.WithCores(cores),
			coup.WithProtocol(p),
			coup.WithWorkloadParams(coup.WorkloadParams{Scale: graphScale, EdgeFactor: 10, Seed: 13}),
		)
		if err != nil {
			panic(err)
		}
		label := "atomic-or bitmap (MESI)"
		if p == "MEUSI" {
			label = "commutative-or bitmap (COUP)"
		}
		fmt.Printf("%-30s %9d cycles  %6d read/update mode switches\n",
			label, st.Cycles, st.TypeSwitches)
	}

	fmt.Println("\nBFS levels validate exactly against a sequential traversal —")
	fmt.Println("test-then-set races only cause benign duplicate visits, as the")
	fmt.Println("paper notes for state-of-the-art implementations.")
}
