// BFS: graph traversal with a visited bitmap (Sec 4.2). The bitmap is
// tested with ordinary loads and set with commutative ORs, so its lines
// bounce between read-only and update-only modes — the finely-interleaved
// pattern where software privatization is impractical but COUP still helps.
//
//	go run ./examples/bfs
package main

import (
	"fmt"

	"repro/pkg/coup"
)

func main() {
	const cores = 64
	fmt.Printf("parallel BFS over an R-MAT graph (2^13 vertices), %d cores\n\n", cores)

	for _, p := range []string{"MESI", "MEUSI"} {
		st, err := coup.Run("bfs",
			coup.WithCores(cores),
			coup.WithProtocol(p),
			coup.WithWorkloadParams(coup.WorkloadParams{Scale: 13, EdgeFactor: 10, Seed: 13}),
		)
		if err != nil {
			panic(err)
		}
		label := "atomic-or bitmap (MESI)"
		if p == "MEUSI" {
			label = "commutative-or bitmap (COUP)"
		}
		fmt.Printf("%-30s %9d cycles  %6d read/update mode switches\n",
			label, st.Cycles, st.TypeSwitches)
	}

	fmt.Println("\nBFS levels validate exactly against a sequential traversal —")
	fmt.Println("test-then-set races only cause benign duplicate visits, as the")
	fmt.Println("paper notes for state-of-the-art implementations.")
}
