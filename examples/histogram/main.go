// Histogram: the paper's motivating application (Fig 2). Builds a histogram
// of 16-bit values on 64 simulated cores three ways — shared atomics,
// software privatization, and COUP commutative adds — and shows the
// privatization-vs-atomics tradeoff that COUP sidesteps. Workloads and
// protocols are selected by pkg/coup registry name.
//
//	go run ./examples/histogram
//	go run ./examples/histogram -scale 0.02   # tiny run (CI smoke tests)
package main

import (
	"flag"
	"fmt"

	"repro/pkg/coup"
)

func main() {
	scale := flag.Float64("scale", 1.0, "shrink the workload for quick runs (1.0 = full)")
	flag.Parse()
	const cores = 64
	pixels := int(100_000 * *scale)
	if pixels < 1000 {
		pixels = 1000
	}
	fmt.Printf("parallel histogram, %d input values, %d cores\n\n", pixels, cores)
	fmt.Printf("%8s  %14s  %14s  %14s\n", "bins", "COUP", "atomics", "privatization")

	for _, bins := range []int{64, 1024, 16384} {
		row := [3]uint64{}
		for i, cfg := range []struct {
			protocol string
			workload string
		}{
			{"MEUSI", "hist"},
			{"MESI", "hist"},
			{"MESI", "hist-priv-core"},
		} {
			st, err := coup.Run(cfg.workload,
				coup.WithCores(cores),
				coup.WithProtocol(cfg.protocol),
				coup.WithWorkloadParams(coup.WorkloadParams{Size: pixels, Bins: bins, Seed: 7}),
			)
			if err != nil {
				panic(err)
			}
			row[i] = st.Cycles
		}
		fmt.Printf("%8d  %8d cyc  %8d cyc  %8d cyc\n", bins, row[0], row[1], row[2])
	}

	fmt.Println("\nprivatization wins over atomics at few bins and loses at many;")
	fmt.Println("COUP outperforms both across the sweep (paper Fig 2). Every run")
	fmt.Println("validates the exact bin counts against a sequential reference.")
}
