// Histogram: the paper's motivating application (Fig 2). Builds a histogram
// of 16-bit values on 64 simulated cores three ways — shared atomics,
// software privatization, and COUP commutative adds — and shows the
// privatization-vs-atomics tradeoff that COUP sidesteps.
//
//	go run ./examples/histogram
package main

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	const (
		cores  = 64
		pixels = 100_000
	)
	fmt.Printf("parallel histogram, %d input values, %d cores\n\n", pixels, cores)
	fmt.Printf("%8s  %14s  %14s  %14s\n", "bins", "COUP", "atomics", "privatization")

	for _, bins := range []int{64, 1024, 16384} {
		row := [3]uint64{}
		for i, cfg := range []struct {
			proto sim.Protocol
			mode  workloads.HistMode
		}{
			{sim.MEUSI, workloads.HistShared},
			{sim.MESI, workloads.HistShared},
			{sim.MESI, workloads.HistPrivCore},
		} {
			w := workloads.NewHist(pixels, bins, cfg.mode, 7)
			st, err := workloads.Run(w, sim.DefaultConfig(cores, cfg.proto))
			if err != nil {
				panic(err)
			}
			row[i] = st.Cycles
		}
		fmt.Printf("%8d  %8d cyc  %8d cyc  %8d cyc\n", bins, row[0], row[1], row[2])
	}

	fmt.Println("\nprivatization wins over atomics at few bins and loses at many;")
	fmt.Println("COUP outperforms both across the sweep (paper Fig 2). Every run")
	fmt.Println("validates the exact bin counts against a sequential reference.")
}
