// Refcount: the Sec 5.4 case study. Shared reference counters updated by
// every core, with decrements checking for zero — immediate deallocation
// with plain counters (XADD vs COUP) and SNZI trees, then delayed
// deallocation (COUP counters + modified bitmap vs Refcache). All variants
// are registered workloads, selected by name.
//
//	go run ./examples/refcount
//	go run ./examples/refcount -scale 0.05   # tiny run (CI smoke tests)
package main

import (
	"flag"
	"fmt"

	"repro/pkg/coup"
)

const cores = 64

// scaled shrinks a work size by the -scale factor, keeping it positive.
func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		v = 1
	}
	return v
}

func run(workload, protocol string, wp coup.WorkloadParams) uint64 {
	st, err := coup.Run(workload,
		coup.WithCores(cores),
		coup.WithProtocol(protocol),
		coup.WithWorkloadParams(wp),
	)
	if err != nil {
		panic(err)
	}
	return st.Cycles
}

func main() {
	scale := flag.Float64("scale", 1.0, "shrink the workload for quick runs (1.0 = full)")
	flag.Parse()
	fmt.Printf("reference counting on %d cores (1024 objects)\n\n", cores)

	imm := coup.WorkloadParams{Counters: 1024, Size: scaled(2000, *scale), HighCount: true, Seed: 21}
	fmt.Println("immediate deallocation (cycles, lower is better):")
	xadd := run("refcount", "MESI", imm)
	cp := run("refcount", "MEUSI", imm)
	snzi := run("refcount-snzi", "MESI", imm)
	fmt.Printf("  XADD %d   COUP %d   SNZI %d\n\n", xadd, cp, snzi)

	upe := scaled(300, *scale)
	del := coup.WorkloadParams{Counters: 8192, Iters: 2, UpdatesPerEpoch: upe, Seed: 27}
	fmt.Printf("delayed deallocation, %d updates/epoch (cycles, lower is better):\n", upe)
	dcoup := run("refcount-delayed", "MEUSI", del)
	drefc := run("refcount-refcache", "MESI", del)
	fmt.Printf("  COUP (counters + commutative-or bitmap) %d\n", dcoup)
	fmt.Printf("  Refcache (per-thread delta caches)      %d   (COUP %.2fx faster)\n",
		drefc, float64(drefc)/float64(dcoup))

	fmt.Println("\nall final counts validate against the exact inc/dec history.")
}
