// Refcount: the Sec 5.4 case study. Shared reference counters updated by
// every core, with decrements checking for zero — immediate deallocation
// with plain counters (XADD vs COUP) and SNZI trees, then delayed
// deallocation (COUP counters + modified bitmap vs Refcache).
//
//	go run ./examples/refcount
package main

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workloads"
)

func run(w workloads.Workload, cores int, p sim.Protocol) uint64 {
	st, err := workloads.Run(w, sim.DefaultConfig(cores, p))
	if err != nil {
		panic(err)
	}
	return st.Cycles
}

func main() {
	const cores = 64
	fmt.Printf("reference counting on %d cores (1024 objects)\n\n", cores)

	const updates = 2000
	fmt.Println("immediate deallocation (cycles, lower is better):")
	xadd := run(workloads.NewRefCount(1024, updates, true, workloads.RefPlain, 21), cores, sim.MESI)
	coup := run(workloads.NewRefCount(1024, updates, true, workloads.RefPlain, 21), cores, sim.MEUSI)
	snzi := run(workloads.NewRefCount(1024, updates, true, workloads.RefSNZI, 21), cores, sim.MESI)
	fmt.Printf("  XADD %d   COUP %d   SNZI %d\n\n", xadd, coup, snzi)

	fmt.Println("delayed deallocation, 300 updates/epoch (cycles, lower is better):")
	dcoup := run(workloads.NewRefCountDelayed(8192, 2, 300, workloads.DelayedCoup, 27), cores, sim.MEUSI)
	drefc := run(workloads.NewRefCountDelayed(8192, 2, 300, workloads.DelayedRefcache, 27), cores, sim.MESI)
	fmt.Printf("  COUP (counters + commutative-or bitmap) %d\n", dcoup)
	fmt.Printf("  Refcache (per-thread delta caches)      %d   (COUP %.2fx faster)\n",
		drefc, float64(drefc)/float64(dcoup))

	fmt.Println("\nall final counts validate against the exact inc/dec history.")
}
