// Package examples_test smoke-tests the runnable examples: each one is
// built and executed at tiny scale (-scale), asserting a zero exit, so
// example rot fails `go test ./...` instead of being discovered by users.
// The test is -short-friendly: tiny scales keep the whole suite to a few
// seconds.
package examples_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// exampleDirs lists every example with the -scale it smoke-runs at.
var exampleDirs = []struct {
	dir   string
	scale string
}{
	{"quickstart", "0.05"},
	{"histogram", "0.02"},
	{"bfs", "0.02"},
	{"refcount", "0.05"},
}

func TestExamplesRun(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH; cannot build examples")
	}
	bindir := t.TempDir()
	for _, ex := range exampleDirs {
		ex := ex
		t.Run(ex.dir, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(bindir, ex.dir)
			build := exec.Command(goBin, "build", "-o", bin, "./"+ex.dir)
			build.Env = os.Environ()
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("build: %v\n%s", err, out)
			}
			run := exec.Command(bin, "-scale", ex.scale)
			out, err := run.CombinedOutput()
			if err != nil {
				t.Fatalf("run -scale %s: %v\n%s", ex.scale, err, out)
			}
			if len(out) == 0 {
				t.Error("example produced no output")
			}
		})
	}
}
